"""Fig. 11 — HyperCube configuration algorithms: workload-to-optimal ratio.

Paper result (Q1-Q4, N in {63, 64, 65}): the paper's Algorithm 1 stays
within ~1.06 of the fractional LP optimum everywhere (and sometimes beats
it — the LP bound is only optimal up to a constant); rounding the LP shares
down is fine when the solution happens to be integral (Q1 at N=64) but
costs up to ~2x otherwise; random allocation of 4096 virtual cells is worst
(~2.8-5.4x) because it destroys locality.

Exact paper anchors asserted: Q1 round-down at N=63 is 3x3x3 with ratio
~1.76 while Algorithm 1 reaches ~1.06.
"""

import pytest
from conftest import SCALE

from repro.hypercube import (
    allocation_workload,
    config_workload,
    optimal_fractional_workload,
    optimize_config,
    random_cell_allocation,
    round_down_config,
)
from repro.query.catalog import cardinalities_for
from repro.workloads import get_workload

QUERIES = ("Q1", "Q2", "Q3", "Q4")
CLUSTERS = (64, 63, 65)


def _ratios():
    rows = []
    for name in QUERIES:
        workload = get_workload(name)
        db = workload.dataset("unit" if SCALE == "unit" else "bench")
        cards = dict(cardinalities_for(workload.query, db))
        for workers in CLUSTERS:
            optimal = optimal_fractional_workload(workload.query, cards, workers)
            ours = config_workload(
                workload.query,
                cards,
                optimize_config(workload.query, cards, workers),
            )
            down = config_workload(
                workload.query,
                cards,
                round_down_config(workload.query, cards, workers),
            )
            random_alloc = allocation_workload(
                workload.query,
                cards,
                random_cell_allocation(workload.query, cards, workers, cells=4096),
            )
            rows.append(
                {
                    "query": name,
                    "workers": workers,
                    "ours": ours / optimal,
                    "round_down": down / optimal,
                    "random": random_alloc / optimal,
                }
            )
    return rows


def test_fig11_config_algorithms(benchmark):
    rows = benchmark.pedantic(_ratios, rounds=1, iterations=1)

    print("\nFig. 11 — workload / fractional-optimal ratio")
    print(f"{'query':>6} {'N':>4} {'our alg.':>9} {'round down':>11} {'random':>8}")
    for row in rows:
        print(
            f"{row['query']:>6} {row['workers']:>4} {row['ours']:>9.2f} "
            f"{row['round_down']:>11.2f} {row['random']:>8.2f}"
        )

    for row in rows:
        # Algorithm 1 is never worse than round-down and stays near optimal
        assert row["ours"] <= row["round_down"] + 1e-9, row
        assert row["ours"] <= 1.5, row
        # random cell allocation is the worst of the three everywhere
        assert row["random"] >= row["ours"] - 1e-9, row

    # the paper's headline: max ours-ratio across the grid is ~1.06 for Q1
    q1_rows = [r for r in rows if r["query"] == "Q1"]
    assert max(r["ours"] for r in q1_rows) < 1.15

    # exact anchor: Q1 at N=63 (uniform self-join sizes)
    workload = get_workload("Q1")
    db = workload.dataset("unit" if SCALE == "unit" else "bench")
    cards = dict(cardinalities_for(workload.query, db))
    down63 = round_down_config(workload.query, cards, 63)
    assert down63.dim_sizes() == (3, 3, 3)
    optimal = optimal_fractional_workload(workload.query, cards, 63)
    assert config_workload(workload.query, cards, down63) / optimal == pytest.approx(
        1.76, abs=0.05
    )
