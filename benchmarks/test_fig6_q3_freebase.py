"""Fig. 6 — Freebase Q3 (acyclic, selective): the *regular* shuffle wins.

Paper result (64 workers): RS_TJ 1.7s / RS_HJ 2.1s are the fastest; the
selective "Joe Pesci" / "Robert De Niro" lookups keep every intermediate
tiny (regular shuffle moves 7.2M tuples), while HyperCube must replicate
base data into a 6-dimensional cube (105M) and broadcast moves 351M.

Shapes asserted: a regular-shuffle configuration wins; shuffle volumes
ordered RS << HC << BR; CPU ordered the same way.
"""

from conftest import run_grid_benchmark

from repro.experiments import format_figure


def test_fig6_q3_freebase(benchmark):
    grid = run_grid_benchmark(benchmark, "Q3")
    print()
    print(format_figure(grid, "Fig. 6 — Q3 cast-members query"))

    assert grid.consistent()
    results = grid.results

    # panel (a): the regular shuffle family wins this query
    assert grid.best_strategy() in ("RS_HJ", "RS_TJ")

    # panel (c): RS moves the least data by a wide margin, BR the most
    shuffled = {name: r.stats.tuples_shuffled for name, r in results.items()}
    assert shuffled["RS_HJ"] < shuffled["HC_HJ"] < shuffled["BR_HJ"]
    # paper: 7.2M vs 105M vs 351M — an order of magnitude between RS and HC
    assert shuffled["HC_HJ"] > 5 * shuffled["RS_HJ"]
    assert shuffled["BR_HJ"] > 2 * shuffled["HC_HJ"]

    # panel (b): CPU follows the shuffle volume (the joined data volume
    # is what drives CPU here, Sec. 3.3)
    cpu = {name: r.stats.total_cpu for name, r in results.items()}
    assert cpu["RS_HJ"] < cpu["HC_HJ"] < cpu["BR_HJ"]
    assert cpu["RS_TJ"] < cpu["HC_TJ"] < cpu["BR_TJ"]

    # skew is not a factor on this query: intermediates are tiny, so the
    # query returns in a handful of answers
    assert 0 < results["RS_HJ"].stats.result_count < 1000
