"""Table 7 — random variable orders vs the cost model's pick.

Paper result (single machine, pre-shuffled data):

    query   avg random runtime   best-order runtime
    Q3      155.22 s             12.62 s
    Q4      864.75 s             129.35 s
    Q7      0.072 s              0.060 s
    Q8      26.39 s              0.23 s   (~100x)

Shapes asserted: for every query the cost model's order does at most the
mean random order's work, and for at least one query the improvement
exceeds 3x (the paper's "order of magnitude" claim, scaled to our data).
"""

import statistics

from conftest import SCALE

from repro.leapfrog.tributary import SeekBudgetExceeded, TributaryJoin
from repro.leapfrog.variable_order import (
    best_join_order,
    enumerate_join_orders,
    full_variable_order,
)

#: the simulator equivalent of the paper's 1,000-second termination rule
SEEK_CAP = 2_000_000
from repro.query.catalog import Catalog
from repro.storage.generators import FreebaseConfig, freebase_database
from repro.workloads import WORKLOADS

_TABLE7_CONFIG = FreebaseConfig(
    actors=250,
    films=70,
    performances=700,
    directors=25,
    filler_objects=1_500,
    honors=200,
    awards=6,
)

QUERIES = ("Q3", "Q4", "Q7", "Q8")
SAMPLES = 8 if SCALE != "unit" else 4


def _seeks_for(query, relations, order, encoder):
    join = TributaryJoin(
        query,
        relations,
        order=full_variable_order(query, order),
        encoder=encoder,
        max_seeks=SEEK_CAP,
    )
    try:
        join.run()
        return join.total_seeks()
    except SeekBudgetExceeded:
        return SEEK_CAP  # a terminated order, counted at the cap


def _table():
    database = freebase_database(_TABLE7_CONFIG)
    catalog = Catalog(database)
    rows = []
    for name in QUERIES:
        query = WORKLOADS[name].query
        relations = {atom.alias: database[atom.relation] for atom in query.atoms}
        join_vars = query.join_variables()
        if len(join_vars) <= 3:
            orders = list(enumerate_join_orders(query))
        else:
            orders = list(enumerate_join_orders(query, sample=SAMPLES, seed=3))
        random_seeks = [
            _seeks_for(query, relations, order, database.encode)
            for order in orders
        ]
        best = best_join_order(query, catalog)
        best_seeks = _seeks_for(query, relations, best.order, database.encode)
        rows.append(
            {
                "query": name,
                "random_mean": statistics.mean(random_seeks),
                "random_worst": max(random_seeks),
                "best": best_seeks,
            }
        )
    return rows


def test_table7_variable_order(benchmark):
    rows = benchmark.pedantic(_table, rounds=1, iterations=1)

    print("\nTable 7 — seeks with random orders vs the cost model's order")
    print(f"{'query':>6} {'random mean':>13} {'random worst':>13} {'best order':>11}")
    for row in rows:
        print(
            f"{row['query']:>6} {row['random_mean']:>13,.0f} "
            f"{row['random_worst']:>13,} {row['best']:>11,}"
        )

    for row in rows:
        # the model's pick is never (meaningfully) worse than a random draw
        assert row["best"] <= row["random_mean"] * 1.1, row

    # and on at least one query it wins big (paper: ~10-100x on Q3/Q8)
    improvements = [row["random_mean"] / max(1, row["best"]) for row in rows]
    assert max(improvements) > 3.0
