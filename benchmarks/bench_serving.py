#!/usr/bin/env python
"""Serving benchmark: concurrent mixed traffic through the QueryService.

Drives hundreds of mixed Q1-Q8 queries with Zipf query popularity through
:class:`repro.engine.service.QueryService` at several concurrency levels,
recording throughput and p50/p95/p99 submit-to-finish latency per level.

Two properties are *verified*, not just measured:

- **Zero cross-query leakage** — every served query's counted metrics
  (rows, shuffled tuples, counted CPU/wall, phase list, peak memory per
  worker) are compared bit-for-bit against a solo run of the same query
  on the same dataset.  Any divergence fails the bench: concurrency must
  be invisible to a query's own accounting.
- **Determinism** — the traffic trace is seeded, so reruns serve the
  identical query sequence.

Latency here is wall-clock and machine-dependent (like BENCH_e2e.json's
``seconds``); the counted metrics and the leakage check are exact.  The
report records ``cpu_cores`` because concurrency level N only buys
wall-clock parallelism inside Rounds (via ``--runtime``), never across
them — the scheduler is cooperative, so on any machine higher concurrency
trades individual latency for fairness at roughly constant throughput.

Usage::

    python benchmarks/bench_serving.py           # 512 queries x levels 1/8/16
    python benchmarks/bench_serving.py --quick   # 48 queries x levels 2/8 (CI)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.service import QueryRequest, QueryService  # noqa: E402
from repro.planner.api import run_query  # noqa: E402
from repro.planner.optimizer import PlanCache  # noqa: E402
from repro.workloads.registry import PAPER_ORDER, WORKLOADS  # noqa: E402
from repro.workloads.traffic import latency_summary, zipf_mix  # noqa: E402

WORKERS = 8

#: Zipf popularity exponent of the traffic mix (~web-traffic skew)
ZIPF_EXPONENT = 1.0

#: traffic-trace seed — the bench is a fixed, reproducible query sequence
SEED = 2015


def counted(stats) -> tuple:
    """The counted-metric digest that must match a solo run exactly."""
    return (
        stats.result_count,
        stats.tuples_shuffled,
        stats.total_cpu,
        stats.wall_clock,
        tuple(stats.phases()),
        tuple(sorted(stats.peak_memory.items())),
    )


def solo_baselines(names, databases) -> dict[str, tuple]:
    """One solo run per distinct workload: the leakage-check reference."""
    baselines = {}
    for name in names:
        workload = WORKLOADS[name]
        result = run_query(
            workload.query,
            databases[name],
            strategy="auto",
            workers=WORKERS,
        )
        if result.failed:
            raise AssertionError(f"solo {name} failed: {result.stats.failure}")
        baselines[name] = (sorted(result.rows), counted(result.stats))
    return baselines


def serve_level(
    trace, databases, baselines, concurrency: int, runtime: str
) -> dict:
    """Serve the whole trace at one concurrency level and verify leakage."""
    service = QueryService(
        runtime=runtime,
        max_inflight=concurrency,
        plan_cache=PlanCache(),
    )
    started = time.perf_counter()
    for name in trace:
        workload = WORKLOADS[name]
        service.submit(
            QueryRequest(
                query=workload.query,
                database=databases[name],
                workers=WORKERS,
                label=name,
            )
        )
    outcomes = service.run_until_complete()
    elapsed = time.perf_counter() - started

    leakage_failures = []
    for outcome in outcomes:
        if not outcome.ok:
            leakage_failures.append(
                f"#{outcome.query_id} {outcome.label}: {outcome.status} "
                f"({outcome.detail})"
            )
            continue
        rows, digest = baselines[outcome.label]
        if sorted(outcome.rows) != rows or counted(outcome.stats) != digest:
            leakage_failures.append(
                f"#{outcome.query_id} {outcome.label}: counted metrics "
                "diverge from solo run"
            )

    stats = service.stats
    cached = stats.cache_hits + stats.cache_misses
    return {
        "concurrency": concurrency,
        "queries": len(outcomes),
        "elapsed_seconds": elapsed,
        "throughput_qps": len(outcomes) / elapsed if elapsed else float("inf"),
        "latency": latency_summary(
            [o.wall_seconds for o in outcomes if o.ok]
        ),
        "outcomes": {k: v for k, v in stats.outcome_counts().items() if v},
        "peak_inflight": stats.peak_inflight,
        "scheduler_ticks": stats.ticks,
        "rounds_executed": stats.rounds_executed,
        "plan_cache_hit_rate": stats.cache_hits / cached if cached else 0.0,
        "oom_retries": stats.oom_retries,
        "leakage_checked": len(outcomes),
        "leakage_failures": leakage_failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="48 queries at levels 2 and 8 (CI smoke)")
    parser.add_argument("--queries", type=int, default=None,
                        help="queries per level (default: 512, or 48 with --quick)")
    parser.add_argument("--levels", type=int, nargs="*", default=None,
                        help="concurrency levels (default: 1 8 16, or 2 8 with --quick)")
    parser.add_argument("--runtime", default="serial",
                        help="worker runtime shared by all queries "
                             "(serial, parallel[:N], parallel:N:proc)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="popularity-ordered subset of Q1..Q8 (default: all)")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--zipf", type=float, default=ZIPF_EXPONENT)
    parser.add_argument("--output", default=None,
                        help="output path (default: <repo>/BENCH_serving.json)")
    args = parser.parse_args(argv)
    queries = args.queries or (48 if args.quick else 512)
    levels = args.levels or ([2, 8] if args.quick else [1, 8, 16])
    names = args.workloads or list(PAPER_ORDER)
    output = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_serving.json"
    )

    cores = os.cpu_count() or 1
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        pass

    # unit scale: the serving bench measures the *scheduler*, and hundreds
    # of bench-scale queries would measure the datasets instead
    databases = {}
    built = {}
    for name in names:
        workload = WORKLOADS[name]
        if workload.unit_dataset not in built:
            built[workload.unit_dataset] = workload.dataset("unit")
        databases[name] = built[workload.unit_dataset]

    trace = zipf_mix(names, queries, exponent=args.zipf, seed=args.seed)
    baselines = solo_baselines(sorted(set(trace)), databases)

    per_level = []
    clean = True
    for concurrency in levels:
        level = serve_level(
            trace, databases, baselines, concurrency, args.runtime
        )
        per_level.append(level)
        clean = clean and not level["leakage_failures"]
        print(
            f"concurrency {concurrency:>3}: "
            f"{level['throughput_qps']:6.1f} q/s  "
            f"p50 {level['latency']['p50_seconds'] * 1000:7.1f}ms  "
            f"p99 {level['latency']['p99_seconds'] * 1000:7.1f}ms  "
            f"cache {level['plan_cache_hit_rate'] * 100:3.0f}%  "
            f"leakage failures {len(level['leakage_failures'])}",
            flush=True,
        )

    report = {
        "queries_per_level": queries,
        "traffic": {
            "workloads": names,
            "zipf_exponent": args.zipf,
            "seed": args.seed,
            "mix": {name: trace.count(name) for name in sorted(set(trace))},
        },
        "scale": "unit",
        "workers": WORKERS,
        "runtime": args.runtime,
        "cpu_cores": cores,
        "note": (
            "latency/throughput are measured wall-clock (machine-dependent); "
            "the leakage check is exact: every served query's counted "
            "metrics are bit-identical to its solo run or the bench fails."
        ),
        "leakage_check": "pass" if clean else "FAIL",
        "levels": per_level,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output} (cpu_cores={cores}, "
          f"leakage_check={report['leakage_check']})")
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
