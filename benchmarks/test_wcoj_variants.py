"""Extension — the three worst-case-optimal join implementations compared.

The paper implements one member of the WCOJ family (Tributary = LFTJ over
sorted arrays) and cites the other two designs: LFTJ over B-trees
(LogicBlox) and NPRR/Generic Join (hash-trie intersection).  This benchmark
runs all three on the triangle query over the power-law graph and checks
the family-level invariants:

- identical results;
- every variant's total work stays far below the binary-join blow-up
  (the 2-hop intermediate that motivates WCOJ in the first place).
"""

import time

from repro.leapfrog.generic_join import GenericJoin
from repro.leapfrog.tributary import TributaryJoin
from repro.storage.generators import twitter_graph
from repro.workloads import Q1


def _variants(graph):
    relations = {atom.alias: graph for atom in Q1.atoms}
    outcomes = {}
    for label, factory in (
        ("tributary/sorted", lambda: TributaryJoin(Q1, relations)),
        ("tributary/btree", lambda: TributaryJoin(Q1, relations, backend="btree")),
        ("generic join", lambda: GenericJoin(Q1, relations)),
    ):
        join = factory()
        started = time.perf_counter()
        rows = join.run()
        elapsed = time.perf_counter() - started
        outcomes[label] = (set(rows), elapsed, join)
    return outcomes


def test_wcoj_variants_agree(benchmark):
    graph = twitter_graph(nodes=3_000, edges=9_000)
    outcomes = benchmark.pedantic(_variants, args=(graph,), rounds=1, iterations=1)

    print(f"\nWCOJ variants on Q1 ({len(graph):,} edges):")
    reference = None
    for label, (rows, elapsed, join) in outcomes.items():
        if reference is None:
            reference = rows
        assert rows == reference, f"{label} disagrees"
        if isinstance(join, GenericJoin):
            work = f"probes={join.stats.probes:,}"
        else:
            work = f"seeks={join.total_seeks():,}"
        print(f"  {label:<18} {elapsed:6.2f}s  {work}  results={len(rows):,}")

    # the motivating comparison: any WCOJ's work is far below the 2-hop
    # intermediate a binary plan would materialize
    from collections import Counter

    out_deg = Counter(s for s, _ in graph.rows)
    in_deg = Counter(d for _, d in graph.rows)
    two_hops = sum(in_deg[v] * out_deg.get(v, 0) for v in in_deg)
    for label, (_, _, join) in outcomes.items():
        work = (
            join.stats.probes
            if isinstance(join, GenericJoin)
            else join.total_seeks()
        )
        assert work < two_hops, f"{label} does more work than the blow-up"
